// Package units defines the simulation's base quantities: time, CPU cycles,
// bit rates, and Ethernet wire arithmetic.
//
// Time is measured in integer picoseconds so that both the 10-Gigabit
// Ethernet bit time (exactly 100 ps) and CPU cycle durations at common
// frequencies can be represented without rounding drift over long runs.
package units

import (
	"fmt"
	"math/bits"
)

// Time is a point in (or span of) simulated time, in picoseconds.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Never is a sentinel meaning "not scheduled".
const Never Time = 1<<63 - 1

// Nanoseconds returns t as a float64 number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns t as a float64 number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds returns t as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats t with an adaptive unit.
func (t Time) String() string {
	switch {
	case t == Never:
		return "never"
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.3gns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.4gus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.4gms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4gs", t.Seconds())
	}
}

// Cycles counts CPU clock cycles.
type Cycles int64

// Freq is a clock frequency in hertz.
type Freq int64

// DefaultCPUFreq matches the paper's Xeon E5-2690 v3 (2.60 GHz).
const DefaultCPUFreq Freq = 2_600_000_000

// mulDiv computes a*b/c with a 128-bit intermediate. All inputs must be
// non-negative and the quotient must fit in int64.
func mulDiv(a, b, c int64) int64 {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	q, _ := bits.Div64(hi, lo, uint64(c))
	return int64(q)
}

const picosPerSecond = 1_000_000_000_000

// Duration converts a cycle count at frequency f into simulated time,
// rounding down to the nearest picosecond (with half-up rounding).
func (f Freq) Duration(c Cycles) Time {
	if f <= 0 {
		panic("units: non-positive frequency")
	}
	hi, lo := bits.Mul64(uint64(c), picosPerSecond)
	lo2, carry := bits.Add64(lo, uint64(f)/2, 0)
	q, _ := bits.Div64(hi+carry, lo2, uint64(f))
	return Time(q)
}

// CyclesIn returns the whole number of cycles at frequency f that fit in t.
func (f Freq) CyclesIn(t Time) Cycles {
	return Cycles(mulDiv(int64(t), int64(f), picosPerSecond))
}

// BitRate is a data rate in bits per second.
type BitRate int64

// Common rates.
const (
	BitPerSecond BitRate = 1
	Kbps                 = 1000 * BitPerSecond
	Mbps                 = 1000 * Kbps
	Gbps                 = 1000 * Mbps
)

// TenGigE is the line rate of the paper's Intel 82599 ports.
const TenGigE = 10 * Gbps

// Gigabits returns r as a float64 number of Gbit/s.
func (r BitRate) Gigabits() float64 { return float64(r) / float64(Gbps) }

// TimeForBits returns the serialization time of n bits at rate r.
func (r BitRate) TimeForBits(n int64) Time {
	if r <= 0 {
		panic("units: non-positive bit rate")
	}
	return Time(mulDiv(n, picosPerSecond, int64(r)))
}

// Ethernet wire accounting: each frame additionally occupies the 7-byte
// preamble, 1-byte SFD, and the 12-byte minimum inter-frame gap on the wire.
const (
	EthOverheadBytes = 20
	MinFrameBytes    = 64
	MaxFrameBytes    = 1518
)

// WireBytes returns the wire occupancy of a frame of the given length.
func WireBytes(frameLen int) int { return frameLen + EthOverheadBytes }

// WireTime returns the serialization time of a frame of the given length at
// rate r, including preamble and inter-frame gap.
func (r BitRate) WireTime(frameLen int) Time {
	return r.TimeForBits(int64(WireBytes(frameLen)) * 8)
}

// MaxPPS returns the maximum packet rate (packets/second) sustainable at
// rate r with frames of the given length. 64-byte frames at 10 GbE yield
// the canonical 14.88 Mpps.
func (r BitRate) MaxPPS(frameLen int) float64 {
	return float64(r) / (float64(WireBytes(frameLen)) * 8)
}

// RateForPPS returns the wire bit rate consumed by pps packets/second of the
// given frame length.
func RateForPPS(pps float64, frameLen int) BitRate {
	return BitRate(pps * float64(WireBytes(frameLen)) * 8)
}

// PayloadGbps converts a packet count over a window into frame bits
// (without preamble/IFG) per second, in Gbps.
func PayloadGbps(packets int64, frameLen int, window Time) float64 {
	if window <= 0 {
		return 0
	}
	bits := float64(packets) * float64(frameLen) * 8
	return bits / window.Seconds() / 1e9
}

// WireGbps converts a packet count over a window into the "throughput in
// Gbps" convention the paper uses: wire occupancy including preamble and
// inter-frame gap, so a saturated 10 GbE link reads 10 Gbps at every frame
// size (14.88 Mpps at 64B).
func WireGbps(packets int64, frameLen int, window Time) float64 {
	if window <= 0 {
		return 0
	}
	bits := float64(packets) * float64(WireBytes(frameLen)) * 8
	return bits / window.Seconds() / 1e9
}

// WireGbpsBytes computes wire throughput from exact byte and packet
// counts (for mixed-size traffic such as IMIX).
func WireGbpsBytes(packets, bytes int64, window Time) float64 {
	if window <= 0 {
		return 0
	}
	bits := float64(bytes+packets*EthOverheadBytes) * 8
	return bits / window.Seconds() / 1e9
}

// Mpps converts a packet count over a window into millions of packets/second.
func Mpps(packets int64, window Time) float64 {
	if window <= 0 {
		return 0
	}
	return float64(packets) / window.Seconds() / 1e6
}
