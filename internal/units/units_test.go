package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWireTime64B(t *testing.T) {
	// 64B + 20B overhead = 84B = 672 bits; at 10 Gbps the bit time is
	// exactly 100 ps, so the frame takes 67.2 ns on the wire.
	got := TenGigE.WireTime(64)
	if want := 67_200 * Picosecond; got != want {
		t.Fatalf("WireTime(64) = %v, want %v", got, want)
	}
}

func TestMaxPPSCanonical(t *testing.T) {
	got := TenGigE.MaxPPS(64)
	if math.Abs(got-14_880_952.38) > 1 {
		t.Fatalf("MaxPPS(64) = %f, want ~14.88M", got)
	}
	if got := TenGigE.MaxPPS(1518); math.Abs(got-812_743.8) > 1 {
		t.Fatalf("MaxPPS(1518) = %f, want ~812743", got)
	}
}

func TestFreqDurationRoundTrip(t *testing.T) {
	f := DefaultCPUFreq
	for _, c := range []Cycles{0, 1, 13, 26, 100, 174, 1_000_000, 2_600_000_000} {
		d := f.Duration(c)
		back := f.CyclesIn(d)
		if diff := int64(back - c); diff < -1 || diff > 1 {
			t.Errorf("round trip %d cycles -> %v -> %d cycles", c, d, back)
		}
	}
	// One cycle at 2.6 GHz is 5/13 ns = 384.615... ps, rounded to 385.
	if d := f.Duration(1); d != 385*Picosecond {
		t.Errorf("Duration(1) = %v, want 385ps", d)
	}
	// 26 cycles is exactly 10 ns.
	if d := f.Duration(26); d != 10*Nanosecond {
		t.Errorf("Duration(26) = %v, want 10ns", d)
	}
}

func TestTimeForBitsExact(t *testing.T) {
	if got := TenGigE.TimeForBits(1); got != 100*Picosecond {
		t.Fatalf("bit time = %v, want 100ps", got)
	}
	if got := (1 * Gbps).TimeForBits(8); got != 8*Nanosecond {
		t.Fatalf("byte at 1G = %v, want 8ns", got)
	}
}

func TestPayloadGbps(t *testing.T) {
	// 14,880,952 64B packets in one second is 7.619 Gbps of frame bits.
	got := PayloadGbps(14_880_952, 64, Second)
	if math.Abs(got-7.619) > 0.001 {
		t.Fatalf("PayloadGbps = %f, want ~7.619", got)
	}
	if got := PayloadGbps(100, 64, 0); got != 0 {
		t.Fatalf("zero window should yield 0, got %f", got)
	}
}

func TestMpps(t *testing.T) {
	if got := Mpps(14_880_952, Second); math.Abs(got-14.880952) > 1e-6 {
		t.Fatalf("Mpps = %f", got)
	}
}

func TestRateForPPS(t *testing.T) {
	r := RateForPPS(14_880_952.38, 64)
	if math.Abs(float64(r-TenGigE)) > 1000 {
		t.Fatalf("RateForPPS inverse = %v, want ~10G", r)
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		500 * Picosecond:  "500ps",
		Never:             "never",
		2 * Microsecond:   "2us",
		3 * Millisecond:   "3ms",
		42 * Nanosecond:   "42ns",
		2 * Second:        "2s",
		1500 * Nanosecond: "1.5us",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
}

func TestWireTimeMonotonic(t *testing.T) {
	// Property: wire time strictly increases with frame length and
	// decreases with rate.
	f := func(a, b uint16) bool {
		la := int(a%1455) + MinFrameBytes
		lb := int(b%1455) + MinFrameBytes
		ta, tb := TenGigE.WireTime(la), TenGigE.WireTime(lb)
		if la < lb && ta >= tb {
			return false
		}
		return TenGigE.WireTime(la) < (1 * Gbps).WireTime(la)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCyclesInAdditive(t *testing.T) {
	// Property: CyclesIn is (approximately) additive over time spans.
	f := func(a, b uint32) bool {
		// Bound inputs so ta+tb stays well inside the Time range.
		ta, tb := Time(a%2_000_000_000)*Nanosecond, Time(b%2_000_000_000)*Nanosecond
		sum := DefaultCPUFreq.CyclesIn(ta) + DefaultCPUFreq.CyclesIn(tb)
		tot := DefaultCPUFreq.CyclesIn(ta + tb)
		d := int64(tot - sum)
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWireGbpsBytesAgreesWithFixedSize(t *testing.T) {
	pkts := int64(1000)
	fixed := WireGbps(pkts, 256, Millisecond)
	byBytes := WireGbpsBytes(pkts, pkts*256, Millisecond)
	if math.Abs(fixed-byBytes) > 1e-9 {
		t.Fatalf("%f vs %f", fixed, byBytes)
	}
	if WireGbpsBytes(1, 64, 0) != 0 {
		t.Fatal("zero window")
	}
}

func TestGigabits(t *testing.T) {
	if TenGigE.Gigabits() != 10 {
		t.Fatalf("gigabits = %f", TenGigE.Gigabits())
	}
}
