package swbench

// Ablation benchmarks for the design choices DESIGN.md calls out: the OvS
// exact-match cache, flow-count sensitivity, multi-core scaling (future
// work), containers vs VMs (future work), and the R⁺-vs-NDR methodology
// choice (paper footnote 3).

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/switches/ovs"
	"repro/internal/switches/switchdef"
	"repro/internal/units"
)

// ovsNoEMC registers an OvS variant with the exact-match cache disabled
// (the other_config:emc-insert-inv-prob=0 ablation).
var registerNoEMC = sync.OnceFunc(func() {
	info, _ := switchdef.Lookup("ovs")
	info.Name = "ovs-noemc"
	info.Display = "OvS-DPDK (EMC off)"
	Register(info, func(env Env) Switch {
		sw := ovs.New(env)
		sw.SetEMC(false)
		return sw
	})
})

func mustRun(b *testing.B, cfg Config) Result {
	b.Helper()
	if cfg.Duration == 0 {
		cfg.Duration = 3 * units.Millisecond
		cfg.Warmup = 2 * units.Millisecond
	}
	res, err := Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationEMC compares OvS single-flow p2p with the EMC enabled
// and disabled: with one flow the EMC hides the megaflow tier entirely.
func BenchmarkAblationEMC(b *testing.B) {
	registerNoEMC()
	for i := 0; i < b.N; i++ {
		on := mustRun(b, Config{Switch: "ovs", Scenario: P2P})
		off := mustRun(b, Config{Switch: "ovs-noemc", Scenario: P2P})
		if i == b.N-1 {
			b.ReportMetric(on.Gbps, "emc_on_Gbps")
			b.ReportMetric(off.Gbps, "emc_off_Gbps")
		}
	}
}

// BenchmarkAblationFlows sweeps the flow count: the paper's single-flow
// traffic is the EMC's best case; tens of thousands of flows thrash it.
func BenchmarkAblationFlows(b *testing.B) {
	for _, flows := range []int{1, 128, 8192, 40000} {
		b.Run(fmt.Sprintf("flows=%d", flows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := mustRun(b, Config{Switch: "ovs", Scenario: P2P, Flows: flows})
				if i == b.N-1 {
					b.ReportMetric(res.Gbps, "Gbps")
				}
			}
		})
	}
}

// BenchmarkAblationMultiCore sweeps SUT cores for the CPU-limited switches
// (bidirectional p2p; two ports shard over at most two cores).
func BenchmarkAblationMultiCore(b *testing.B) {
	for _, name := range []string{"ovs", "t4p4s", "vpp"} {
		for _, cores := range []int{1, 2} {
			b.Run(fmt.Sprintf("%s/cores=%d", name, cores), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res := mustRun(b, Config{Switch: name, Scenario: P2P, Bidir: true, SUTCores: cores})
					if i == b.N-1 {
						b.ReportMetric(res.Gbps, "Gbps")
					}
				}
			})
		}
	}
}

// BenchmarkAblationContainers compares VM-hosted and container-hosted VNF
// chains.
func BenchmarkAblationContainers(b *testing.B) {
	for _, containers := range []bool{false, true} {
		label := "vms"
		if containers {
			label = "containers"
		}
		b.Run(label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := mustRun(b, Config{Switch: "vpp", Scenario: Loopback, Chain: 3, Containers: containers})
				if i == b.N-1 {
					b.ReportMetric(res.Gbps, "Gbps")
				}
			}
		})
	}
}

// BenchmarkAblationNDRvsRPlus runs both rate-finding methodologies on a
// stable and an unstable switch.
func BenchmarkAblationNDRvsRPlus(b *testing.B) {
	for _, name := range []string{"vpp", "t4p4s"} {
		b.Run(name, func(b *testing.B) {
			cfg := Config{Switch: name, Scenario: P2P,
				Duration: 3 * units.Millisecond, Warmup: 2 * units.Millisecond}
			for i := 0; i < b.N; i++ {
				rp, err := EstimateRPlus(cfg)
				if err != nil {
					b.Fatal(err)
				}
				ndr, err := FindNDR(cfg, NDROptions{})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(rp/1e6, "rplus_Mpps")
					b.ReportMetric(ndr.PPS/1e6, "ndr_Mpps")
				}
			}
		})
	}
}
