package swbench_test

// Public-API tests: everything a downstream user does goes through the
// root package, exactly as the examples do.

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	swbench "repro"
)

func quickCfg(name string, scn swbench.ScenarioKind) swbench.Config {
	return swbench.Config{
		Switch:   name,
		Scenario: scn,
		Duration: 2 * swbench.Millisecond,
		Warmup:   swbench.Millisecond,
	}
}

func TestPublicRun(t *testing.T) {
	res, err := swbench.Run(quickCfg("vpp", swbench.P2P))
	if err != nil {
		t.Fatal(err)
	}
	if res.Gbps < 9 {
		t.Fatalf("gbps = %.2f", res.Gbps)
	}
	var b bytes.Buffer
	swbench.RenderResult(&b, res)
	if !strings.Contains(b.String(), "VPP") {
		t.Fatalf("render: %q", b.String())
	}
}

func TestPublicSwitchesAndInfo(t *testing.T) {
	names := swbench.Switches()
	if len(names) != 7 {
		t.Fatalf("switches = %v", names)
	}
	for _, n := range names {
		info, err := swbench.Info(n)
		if err != nil {
			t.Fatal(err)
		}
		if info.Display == "" {
			t.Errorf("%s: empty display name", n)
		}
	}
	if _, err := swbench.Info("cisco9000"); err == nil {
		t.Fatal("unknown switch resolved")
	}
}

func TestPublicLatencyMethodology(t *testing.T) {
	cfg := quickCfg("bess", swbench.P2P)
	rp, err := swbench.EstimateRPlus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rp < 14e6 {
		t.Fatalf("R+ = %.1f Mpps", rp/1e6)
	}
	pt, err := swbench.MeasureLatencyAt(cfg, rp, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Summary.N == 0 || pt.Summary.MeanUs <= 0 {
		t.Fatalf("latency = %+v", pt.Summary)
	}
	pts, err := swbench.LatencyProfile(cfg, []float64{0.1, 0.5})
	if err != nil || len(pts) != 2 {
		t.Fatalf("profile = %v, %v", pts, err)
	}
}

func TestPublicNDR(t *testing.T) {
	res, err := swbench.FindNDR(quickCfg("bess", swbench.P2P), swbench.NDROptions{
		LossTolerance: 2, MaxTrials: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PPS <= 0 || len(res.Trials) == 0 {
		t.Fatalf("ndr = %+v", res)
	}
}

func TestPublicChainCapError(t *testing.T) {
	_, err := swbench.Run(quickCfg("bess", swbench.Loopback))
	if err != nil {
		t.Fatalf("1-VNF failed: %v", err)
	}
	cfg := quickCfg("bess", swbench.Loopback)
	cfg.Chain = 5
	_, err = swbench.Run(cfg)
	if !errors.Is(err, swbench.ErrChainTooLong) {
		t.Fatalf("err = %v", err)
	}
}

func TestPublicRateForPPS(t *testing.T) {
	r := swbench.RateForPPS(14_880_952.38, 64)
	if r < swbench.TenGigE-swbench.Gbps/1000 || r > swbench.TenGigE+swbench.Gbps/1000 {
		t.Fatalf("rate = %d", r)
	}
}

// TestPublicRegisterCustomSwitch mirrors examples/customswitch through the
// exported registration path.
func TestPublicRegisterCustomSwitch(t *testing.T) {
	info := swbench.SwitchInfo{
		Name: "test-wire", Display: "TestWire", Version: "v0",
		SelfContained: true, Paradigm: "structured", ProcessingModel: "RTC",
		VirtualIface: "vhost-user", Reprogrammability: "low",
		Languages: "Go", MainPurpose: "test",
		IOMode: swbench.PollMode,
	}
	swbench.Register(info, func(env swbench.Env) swbench.Switch {
		return &wireSwitch{peer: map[int]int{}}
	})
	res, err := swbench.Run(quickCfg("test-wire", swbench.P2P))
	if err != nil {
		t.Fatal(err)
	}
	if res.Gbps < 9.9 {
		t.Fatalf("custom switch = %.2f Gbps", res.Gbps)
	}
}

type wireSwitch struct {
	swbench.NoRuntimeRules

	ports []swbench.DevPort
	peer  map[int]int
}

func (s *wireSwitch) Info() swbench.SwitchInfo {
	return swbench.SwitchInfo{Name: "test-wire", Display: "TestWire", IOMode: swbench.PollMode}
}

func (s *wireSwitch) AddPort(p swbench.DevPort) int {
	s.ports = append(s.ports, p)
	return len(s.ports) - 1
}

func (s *wireSwitch) CrossConnect(a, b int) error {
	s.peer[a], s.peer[b] = b, a
	return nil
}

func (s *wireSwitch) Poll(now swbench.Time, m *swbench.Meter) bool {
	var buf [32]*swbench.Buf
	did := false
	for i, p := range s.ports {
		dst, ok := s.peer[i]
		if !ok {
			continue
		}
		n := p.RxBurst(now, m, buf[:])
		if n == 0 {
			continue
		}
		did = true
		m.Charge(32) // nearly free
		s.ports[dst].TxBurst(now, m, buf[:n])
	}
	return did
}

func TestPublicTables(t *testing.T) {
	var b bytes.Buffer
	swbench.RenderTable1(&b)
	swbench.RenderTable2(&b)
	swbench.RenderTable5(&b)
	out := b.String()
	for _, want := range []string{"VPP", "4096", "OpenFlow"} {
		if !strings.Contains(out, want) {
			t.Errorf("tables missing %q", want)
		}
	}
}
