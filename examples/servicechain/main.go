// Servicechain: the paper's loopback scenario — an NFV service chain of
// 1..5 VMs each running an l2fwd VNF, traffic steered NIC → VNF₁ → … →
// VNFₙ → NIC by the switch under test (Fig. 5/6 style).
//
// The run shows the paper's two headline chain effects: BESS leads short
// chains but cannot host more than 3 VMs (QEMU incompatibility), and VALE
// overtakes everyone as chains grow thanks to ptnet's zero-copy guest
// crossings, while Snabb collapses at 4 VNFs.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	swbench "repro"
)

func main() {
	frameLen := 64
	if len(os.Args) > 1 && os.Args[1] == "-big" {
		frameLen = 1024
	}
	fmt.Printf("loopback service chains, %dB frames, unidirectional (Gbps)\n\n", frameLen)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "switch\tn=1\tn=2\tn=3\tn=4\tn=5")
	for _, name := range swbench.Switches() {
		fmt.Fprintf(w, "%s", name)
		for chain := 1; chain <= 5; chain++ {
			res, err := swbench.Run(swbench.Config{
				Switch:   name,
				Scenario: swbench.Loopback,
				Chain:    chain,
				FrameLen: frameLen,
				Duration: 6 * swbench.Millisecond,
			})
			if errors.Is(err, swbench.ErrChainTooLong) {
				fmt.Fprintf(w, "\t-")
				continue
			}
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "\t%.2f", res.Gbps)
		}
		fmt.Fprintln(w)
	}
	w.Flush()

	// Pick the best switch for a 4-VNF chain, the paper's Table 5 advice.
	best, bestGbps := "", 0.0
	for _, name := range swbench.Switches() {
		res, err := swbench.Run(swbench.Config{
			Switch: name, Scenario: swbench.Loopback, Chain: 4,
			FrameLen: frameLen, Duration: 6 * swbench.Millisecond,
		})
		if err != nil {
			continue
		}
		if res.Gbps > bestGbps {
			best, bestGbps = name, res.Gbps
		}
	}
	fmt.Printf("\nBest switch for a 4-VNF chain at %dB: %s (%.2f Gbps)\n", frameLen, best, bestGbps)
}
