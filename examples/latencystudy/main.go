// Latencystudy: the paper's latency methodology (§5.3) end to end for one
// switch — estimate the maximal forwarding rate R⁺ from a saturated run,
// then measure RTT across a fine load ladder and print the distribution,
// exposing the batching-induced low-load inflation and the congestion tail
// near R⁺ that Table 3 condenses into three columns.
//
// Usage: latencystudy [switch] [scenario]   (defaults: vpp loopback)
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	swbench "repro"
)

func main() {
	name := "vpp"
	scenario := swbench.Loopback
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	if len(os.Args) > 2 {
		switch strings.ToLower(os.Args[2]) {
		case "p2p":
			scenario = swbench.P2P
		case "loopback":
			scenario = swbench.Loopback
		default:
			log.Fatalf("scenario %q: want p2p or loopback", os.Args[2])
		}
	}

	cfg := swbench.Config{
		Switch:   name,
		Scenario: scenario,
		Chain:    1,
		FrameLen: 64,
		Duration: 10 * swbench.Millisecond,
	}
	rp, err := swbench.EstimateRPlus(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s %v: R+ = %.3f Mpps (average saturated throughput, §5.3)\n\n",
		name, scenario, rp/1e6)

	loads := []float64{0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99}
	fmt.Printf("%6s %10s %10s %10s %10s %10s\n", "load", "mean us", "std us", "p50 us", "p99 us", "max us")
	for _, load := range loads {
		pt, err := swbench.MeasureLatencyAt(cfg, rp, load)
		if err != nil {
			log.Fatal(err)
		}
		s := pt.Summary
		fmt.Printf("%6.2f %10.1f %10.1f %10.1f %10.1f %10.1f\n",
			load, s.MeanUs, s.StdUs, s.P50Us, s.P99Us, s.MaxUs)
	}

	fmt.Println("\nReading the ladder (paper §5.3):")
	fmt.Println(" - very low loads pay for batch assembly (the l2fwd VNF flushes 32-frame")
	fmt.Println("   bursts or a drain timer), so latency *rises* as load falls;")
	fmt.Println(" - near R+ the data path congests and queueing dominates;")
	fmt.Println(" - the sweet spot sits around 0.25–0.75·R+.")
}
