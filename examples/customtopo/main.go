// Customtopo: run a topology none of the paper's four scenarios can
// express — an asymmetric 3-VNF service chain that enters through a
// physical NIC but terminates inside a fourth VM (phys → vnf → vnf →
// vnf → guest monitor), so there is no return NIC at all.
//
// The chain is pure data (chain3.json): typed nodes and cross-connect
// edges, parsed and validated by the topology IR and compiled onto each
// switch by the same graph compiler the built-in scenarios use. The same
// file runs from the CLI:
//
//	swbench topo -file examples/customtopo/chain3.json -format dot
//	swbench run -switch vpp -topology examples/customtopo/chain3.json -latency
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"text/tabwriter"

	swbench "repro"
)

func main() {
	// Locate chain3.json next to this source file, so the example runs
	// from any working directory.
	_, self, _, _ := runtime.Caller(0)
	data, err := os.ReadFile(filepath.Join(filepath.Dir(self), "chain3.json"))
	if err != nil {
		log.Fatal(err)
	}
	graph, err := swbench.ParseTopology(data)
	if err != nil {
		log.Fatal(err)
	}

	// The compiled plan shows what the testbed will install: SUT port
	// indices, cross-connects, and each VNF's derived MAC rewrites.
	plan, err := swbench.PlanTopology(graph)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology %q: %d SUT ports, %d cross-connects, %d actors\n\n",
		graph.Name, len(plan.Ports), len(plan.Crosses), len(plan.Actors))

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "switch\tGbps\tMpps\tmean RTT (us)\tp99 (us)")
	for _, name := range swbench.Switches() {
		res, err := swbench.Run(swbench.Config{
			Switch:     name,
			Scenario:   swbench.Custom,
			Topology:   graph,
			FrameLen:   64,
			Duration:   4 * swbench.Millisecond,
			ProbeEvery: 20 * swbench.Microsecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.1f\t%.1f\n",
			name, res.Gbps, res.Mpps, res.Latency.MeanUs, res.Latency.P99Us)
	}
	w.Flush()
	fmt.Println("\nEach switch hosts the same declarative graph; per-switch")
	fmt.Println("differences (vhost-user vs. ptnet guest ports, l2fwd vs. guest")
	fmt.Println("VALE VNFs) are decided by the compiler's assembler, not the topology.")
}
