// Quickstart: compare all seven switches in the paper's simplest scenario —
// an L2 forwarder between two 10 GbE ports (p2p) — at 64B line rate, then
// with bidirectional traffic, reproducing the headline comparison of the
// paper's introduction (Fig. 1 context).
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	swbench "repro"
)

func main() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "switch\tuni Gbps\tbidir Gbps\tRTT@0.95R+ (us)")
	for _, name := range swbench.Switches() {
		uni, err := swbench.Run(swbench.Config{
			Switch:   name,
			Scenario: swbench.P2P,
			FrameLen: 64,
			Duration: 8 * swbench.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		bidir, err := swbench.Run(swbench.Config{
			Switch:   name,
			Scenario: swbench.P2P,
			FrameLen: 64,
			Bidir:    true,
			Duration: 8 * swbench.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Latency at 95% of the bidirectional per-direction rate, as in
		// the paper's Fig. 1.
		lat, err := swbench.MeasureLatencyAt(swbench.Config{
			Switch:   name,
			Scenario: swbench.P2P,
			FrameLen: 64,
			Bidir:    true,
			Duration: 8 * swbench.Millisecond,
		}, bidir.Dirs[0].Mpps*1e6, 0.95)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.1f\n", name, uni.Gbps, bidir.Gbps, lat.Summary.MeanUs)
	}
	w.Flush()
	fmt.Println("\nNote the paper's core observation: the switch with the highest")
	fmt.Println("throughput also achieves the lowest latency (negative correlation).")
}
