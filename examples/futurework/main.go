// Futurework: the paper's §6 closes with "our planned future work will
// include consideration of multi-core solutions and the use of containers
// instead of VMs." This example runs both extensions on the testbed.
//
// Part 1 — multi-core: the bidirectional p2p matrix with traffic spread
// RSS-style (hardware flow hashing) across 1, 2, and 4 cores.
//
// Part 2 — containers: 3-VNF loopback chains with VNFs in QEMU VMs vs
// containers (cheaper virtio-user crossings, no QEMU constraints — BESS
// can exceed 3 VNFs again).
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	swbench "repro"
)

func main() {
	fmt.Println("Part 1 — multi-core scaling, bidirectional p2p, 64B (Gbps aggregate)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "switch\t1 core\t2 cores\t4 cores")
	for _, name := range swbench.Switches() {
		info, _ := swbench.Info(name)
		if info.IOMode == swbench.InterruptMode {
			fmt.Fprintf(w, "%s\t(interrupt-driven: single core only)\n", name)
			continue
		}
		fmt.Fprintf(w, "%s", name)
		for _, cores := range []int{1, 2, 4} {
			cfg := swbench.Config{
				Switch: name, Scenario: swbench.P2P, Bidir: true, Flows: 64,
				SUTCores: cores, Duration: 6 * swbench.Millisecond,
			}
			if cores > 1 {
				// Flow-hash RSS spreads each port over one queue per
				// core — round-robin queue assignment caps p2p's two
				// single-queue ports at two cores.
				cfg.Dispatch = swbench.DispatchRSS
				cfg.RSSPolicy = swbench.RSSFlowHash
			}
			res, err := swbench.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "\t%.2f", res.Gbps)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	fmt.Println("\n(hardware RSS hashes 64 flows over one queue per core; each core")
	fmt.Println(" runs a private switch instance — see internal/multicore)")

	fmt.Println("\nPart 2 — VMs vs containers, loopback chains, 64B (Gbps)")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "switch\tVMs n=3\tcontainers n=3\tVMs n=5\tcontainers n=5")
	for _, name := range swbench.Switches() {
		info, _ := swbench.Info(name)
		if info.VirtualIface != "vhost-user" {
			continue // VALE's ptnet is a VM-coupled mechanism
		}
		fmt.Fprintf(w, "%s", name)
		for _, cfg := range []swbench.Config{
			{Chain: 3}, {Chain: 3, Containers: true},
			{Chain: 5}, {Chain: 5, Containers: true},
		} {
			cfg.Switch = name
			cfg.Scenario = swbench.Loopback
			cfg.Duration = 6 * swbench.Millisecond
			res, err := swbench.Run(cfg)
			if errors.Is(err, swbench.ErrChainTooLong) {
				fmt.Fprintf(w, "\t-")
				continue
			}
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "\t%.2f", res.Gbps)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	fmt.Println("\nNote BESS's '-' under VMs at n=5 (the QEMU incompatibility) turning")
	fmt.Println("into a number under containers.")
}
