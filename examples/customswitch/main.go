// Customswitch: implement your own software switch against the public SUT
// contract, register it, and benchmark it with the paper's methodology
// alongside the seven reference switches.
//
// The toy switch here ("naive") is a deliberately simple store-and-forward
// cross-connect with a heavy per-packet cost — watch where it lands in the
// p2p ranking and in the loopback chain sweep.
package main

import (
	"fmt"
	"log"

	swbench "repro"
)

// naiveSwitch forwards between cross-connected ports one packet at a time.
// It has no runtime rule table, so it embeds the Programmer stub.
type naiveSwitch struct {
	swbench.NoRuntimeRules

	env   swbench.Env
	ports []swbench.DevPort
	peer  map[int]int
}

var naiveInfo = swbench.SwitchInfo{
	Name:              "naive",
	Display:           "NaiveSwitch",
	Version:           "v0.1",
	SelfContained:     true,
	Paradigm:          "structured",
	ProcessingModel:   "RTC",
	VirtualIface:      "vhost-user",
	Reprogrammability: "low",
	Languages:         "Go",
	MainPurpose:       "Example",
	BestAt:            "Being simple",
	Remarks:           "Deliberately slow per-packet loop",
	IOMode:            swbench.PollMode,
}

func (s *naiveSwitch) Info() swbench.SwitchInfo { return naiveInfo }

func (s *naiveSwitch) AddPort(p swbench.DevPort) int {
	s.ports = append(s.ports, p)
	return len(s.ports) - 1
}

func (s *naiveSwitch) CrossConnect(a, b int) error {
	if a < 0 || b < 0 || a >= len(s.ports) || b >= len(s.ports) {
		return fmt.Errorf("naive: bad ports %d,%d", a, b)
	}
	s.peer[a], s.peer[b] = b, a
	return nil
}

func (s *naiveSwitch) Poll(now swbench.Time, m *swbench.Meter) bool {
	did := false
	var buf [1]*swbench.Buf
	for i, p := range s.ports {
		dst, ok := s.peer[i]
		if !ok {
			continue
		}
		// One packet at a time — no batching, so per-burst fixed costs
		// never amortize. ~200 cycles of "logic" per packet.
		for p.RxBurst(now, m, buf[:]) == 1 {
			did = true
			m.Charge(200)
			s.ports[dst].TxBurst(now, m, buf[:])
		}
	}
	return did
}

func main() {
	swbench.Register(naiveInfo, func(env swbench.Env) swbench.Switch {
		return &naiveSwitch{env: env, peer: map[int]int{}}
	})

	fmt.Println("p2p 64B unidirectional ranking, with the custom switch included:")
	names := append(swbench.Switches(), "naive")
	for _, name := range names {
		res, err := swbench.Run(swbench.Config{
			Switch:   name,
			Scenario: swbench.P2P,
			FrameLen: 64,
			Duration: 6 * swbench.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s %6.2f Gbps (%5.2f Mpps, drops=%d)\n", name, res.Gbps, res.Mpps, res.Drops)
	}

	// The methodology generalizes: R⁺ and a latency ladder for the toy.
	cfg := swbench.Config{Switch: "naive", Scenario: swbench.P2P, FrameLen: 64,
		Duration: 6 * swbench.Millisecond}
	rp, err := swbench.EstimateRPlus(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnaive R+ = %.2f Mpps; latency ladder:\n", rp/1e6)
	pts, err := swbench.LatencyProfile(cfg, swbench.Table3Loads)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pts {
		fmt.Printf("  %.2f·R+ → mean %.1f us (p99 %.1f us)\n", p.Load, p.Summary.MeanUs, p.Summary.P99Us)
	}
}
