// Sdnrules: drive the OvS-DPDK data plane directly with OpenFlow-style
// rules and watch the three-tier lookup (EMC → megaflow → slow path) that
// explains its p2p performance in the paper.
//
// This example uses the internal OvS implementation on synthetic ports —
// the level below the benchmark harness — to show the match/action
// machinery the paper's taxonomy (Table 1) classifies OvS-DPDK by.
package main

import (
	"fmt"
	"log"

	"repro/internal/pkt"
	"repro/internal/switches/ovs"
	"repro/internal/switches/switchtest"
)

func main() {
	env := switchtest.Env()
	sw := ovs.New(env)
	ports := make([]*switchtest.FakePort, 3)
	for i := range ports {
		ports[i] = switchtest.NewFakePort(fmt.Sprintf("p%d", i))
		sw.AddPort(ports[i])
	}

	// An SDN-ish rule set: steer one UDP flow to port 2, drop ARP, and
	// let everything else follow in_port-based forwarding.
	rules := []string{
		"priority=200,dl_type=0x0800,nw_proto=17,tp_dst=4789,actions=output:2",
		"priority=150,dl_type=0x0806,actions=drop",
		"priority=100,in_port=0,actions=mod_dl_src:02:aa:aa:aa:aa:aa,output:1",
		"priority=100,in_port=1,actions=output:0",
	}
	for _, r := range rules {
		if err := sw.AddFlow(r); err != nil {
			log.Fatal(err)
		}
		fmt.Println("ovs-ofctl add-flow", r)
	}

	m := switchtest.Meter(env)
	mkFrame := func(dstPort uint16) *pkt.Buf {
		b := env.Pool.Get(64)
		pkt.FrameSpec{
			SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 2},
			SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2},
			SrcPort: 1234, DstPort: dstPort, FrameLen: 64,
		}.Build(b)
		return b
	}

	fmt.Println("\n--- first packets of two flows (slow path, installs caches) ---")
	ports[0].In = append(ports[0].In, mkFrame(4789)) // VXLAN-ish flow → port 2
	ports[0].In = append(ports[0].In, mkFrame(80))   // plain flow → port 1
	switchtest.PollUntilIdle(sw, m, 0)
	report(sw, ports)

	fmt.Println("\n--- same flows again (exact-match cache hits) ---")
	for i := 0; i < 1000; i++ {
		ports[0].In = append(ports[0].In, mkFrame(4789), mkFrame(80))
	}
	switchtest.PollUntilIdle(sw, m, 1)
	report(sw, ports)

	fmt.Println("\n--- a thousand distinct flows sharing one wildcard rule (megaflow hits) ---")
	for i := 0; i < 1000; i++ {
		b := mkFrame(uint16(5000 + i)) // distinct L4 ports ⇒ distinct EMC keys
		ports[0].In = append(ports[0].In, b)
	}
	switchtest.PollUntilIdle(sw, m, 2)
	report(sw, ports)

	fmt.Println("\nper-rule hit counters:")
	for _, r := range sw.Rules() {
		fmt.Printf("  %6d  %s\n", r.Hits, r.Text)
	}
}

func report(sw *ovs.Switch, ports []*switchtest.FakePort) {
	fmt.Printf("  EMC hits=%d megaflow hits=%d slow-path=%d dropped=%d | out: p0=%d p1=%d p2=%d\n",
		sw.EMCHits, sw.MegaHits, sw.SlowHits, sw.Dropped,
		len(ports[0].Out), len(ports[1].Out), len(ports[2].Out))
	for _, p := range ports {
		for _, b := range p.Out {
			b.Free()
		}
		p.Out = nil
	}
}
