// Sdnrules: program the OvS-DPDK data plane through the typed
// switchdef.Programmer control plane and watch the three-tier lookup
// (EMC → megaflow → slow path) that explains its p2p performance in the
// paper — including what a rule Revoke does to the caches mid-traffic.
//
// The rules are typed values (switchdef.Rule), not ovs-ofctl strings: the
// same Install/Revoke/Snapshot surface the mid-run rule controller, the
// multi-core fleet, and every reprogrammable switch share. OvS lowers
// each rule into its OpenFlow table and synthesizes the canonical
// add-flow text, so DumpFlows output is indistinguishable from
// string-installed rules.
//
// The accompanying churn.json runs the same idea under the benchmark
// harness — a p2p topology with a controller node editing rules mid-run:
//
//	swbench topo -file examples/sdnrules/churn.json -format dot
//	swbench run -switch ovs -topology examples/sdnrules/churn.json \
//	        -rule-update-rate 20000 -flows 16384 -zipf 1.1
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"

	swbench "repro"
	"repro/internal/pkt"
	"repro/internal/switches/ovs"
	"repro/internal/switches/switchdef"
	"repro/internal/switches/switchtest"
)

func main() {
	env := switchtest.Env()
	sw := ovs.New(env)
	ports := make([]*switchtest.FakePort, 3)
	for i := range ports {
		ports[i] = switchtest.NewFakePort(fmt.Sprintf("p%d", i))
		sw.AddPort(ports[i])
	}

	// An SDN-ish rule set: steer one UDP flow to port 2, drop ARP, and
	// let everything else follow in_port-based forwarding.
	rules := []switchdef.Rule{
		{Priority: 200, Match: switchdef.Match{
			Fields:  switchdef.FEthType | switchdef.FIPProto | switchdef.FL4Dst,
			EthType: 0x0800, IPProto: 17, L4Dst: 4789,
		}, Actions: []switchdef.RuleAction{{Kind: switchdef.RuleOutput, Port: 2}}},
		{Priority: 150, Match: switchdef.Match{
			Fields: switchdef.FEthType, EthType: 0x0806,
		}, Actions: []switchdef.RuleAction{{Kind: switchdef.RuleDrop}}},
		{Priority: 100, Match: switchdef.Match{
			Fields: switchdef.FInPort, InPort: 0,
		}, Actions: []switchdef.RuleAction{
			{Kind: switchdef.RuleSetEthSrc, MAC: pkt.MAC{2, 0xaa, 0xaa, 0xaa, 0xaa, 0xaa}},
			{Kind: switchdef.RuleOutput, Port: 1},
		}},
		{Priority: 100, Match: switchdef.Match{
			Fields: switchdef.FInPort, InPort: 1,
		}, Actions: []switchdef.RuleAction{{Kind: switchdef.RuleOutput, Port: 0}}},
	}
	for _, r := range rules {
		if err := sw.Install(r); err != nil {
			log.Fatal(err)
		}
	}
	// Each typed rule lowered into the OpenFlow table, echoed as the
	// canonical ovs-ofctl text OvS synthesizes for it.
	fmt.Printf("installed rules (Snapshot reports %d):\n", len(sw.Snapshot()))
	for _, r := range sw.Rules() {
		fmt.Println("  ovs-ofctl add-flow", r.Text)
	}

	m := switchtest.Meter(env)
	mkFrame := func(dstPort uint16) *pkt.Buf {
		b := env.Pool.Get(64)
		pkt.FrameSpec{
			SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 2},
			SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2},
			SrcPort: 1234, DstPort: dstPort, FrameLen: 64,
		}.Build(b)
		return b
	}

	fmt.Println("\n--- first packets of two flows (slow path, installs caches) ---")
	ports[0].In = append(ports[0].In, mkFrame(4789)) // VXLAN-ish flow → port 2
	ports[0].In = append(ports[0].In, mkFrame(80))   // plain flow → port 1
	switchtest.PollUntilIdle(sw, m, 0)
	report(sw, ports)

	fmt.Println("\n--- same flows again (exact-match cache hits) ---")
	for i := 0; i < 1000; i++ {
		ports[0].In = append(ports[0].In, mkFrame(4789), mkFrame(80))
	}
	switchtest.PollUntilIdle(sw, m, 1)
	report(sw, ports)

	fmt.Println("\n--- Revoke the VXLAN steering rule mid-traffic ---")
	// Revoke identifies the installed rule by (priority, match): the
	// caches holding its verdict are flushed, so the next VXLAN packet
	// takes the slow path again and now follows the in_port rule.
	if err := sw.Revoke(rules[0]); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		ports[0].In = append(ports[0].In, mkFrame(4789), mkFrame(80))
	}
	switchtest.PollUntilIdle(sw, m, 2)
	report(sw, ports)

	fmt.Println("\nper-rule hit counters:")
	for _, r := range sw.Rules() {
		fmt.Printf("  %6d  %s\n", r.Hits, r.Text)
	}

	runTopology()
}

// runTopology executes churn.json — the same p2p+controller graph the
// CLI invocation in the package comment runs — under the full harness,
// with mid-run rule churn against a Zipf flow mix.
func runTopology() {
	_, self, _, _ := runtime.Caller(0)
	data, err := os.ReadFile(filepath.Join(filepath.Dir(self), "churn.json"))
	if err != nil {
		log.Fatal(err)
	}
	graph, err := swbench.ParseTopology(data)
	if err != nil {
		log.Fatal(err)
	}
	res, err := swbench.Run(swbench.Config{
		Switch:         "ovs",
		Scenario:       swbench.Custom,
		Topology:       graph,
		FrameLen:       64,
		Duration:       4 * swbench.Millisecond,
		Flows:          16384,
		ZipfSkew:       1.1,
		RuleUpdateRate: 20000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchurn.json on ovs: %.2f Gbps, %d rule updates, %d EMC evictions\n",
		res.Gbps, res.RuleUpdates, res.EMCEvictions)
}

func report(sw *ovs.Switch, ports []*switchtest.FakePort) {
	fmt.Printf("  EMC hits=%d megaflow hits=%d slow-path=%d dropped=%d | out: p0=%d p1=%d p2=%d\n",
		sw.EMCHits, sw.MegaHits, sw.SlowHits, sw.Dropped,
		len(ports[0].Out), len(ports[1].Out), len(ports[2].Out))
	for _, p := range ports {
		for _, b := range p.Out {
			b.Free()
		}
		p.Out = nil
	}
}
