package swbench_test

import (
	"fmt"

	swbench "repro"
)

// The simulation is deterministic, so these examples assert exact output.

func ExampleRun() {
	res, err := swbench.Run(swbench.Config{
		Switch:   "bess",
		Scenario: swbench.P2P,
		FrameLen: 64,
		Duration: 4 * swbench.Millisecond,
		Warmup:   2 * swbench.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s forwards %.2f Gbps (%.2f Mpps)\n", res.Display, res.Gbps, res.Mpps)
	// Output: BESS forwards 10.00 Gbps (14.88 Mpps)
}

func ExampleEstimateRPlus() {
	rp, err := swbench.EstimateRPlus(swbench.Config{
		Switch:   "ovs",
		Scenario: swbench.P2P,
		Duration: 4 * swbench.Millisecond,
		Warmup:   2 * swbench.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("OvS-DPDK R+ is %.1f Mpps at 64B\n", rp/1e6)
	// Output: OvS-DPDK R+ is 11.8 Mpps at 64B
}

func ExampleInfo() {
	info, err := swbench.Info("vale")
	if err != nil {
		panic(err)
	}
	fmt.Println(info.Display, "—", info.MainPurpose)
	fmt.Println("virtual interface:", info.VirtualIface)
	// Output:
	// VALE — Virtual L2 Ethernet
	// virtual interface: ptnet
}

func ExampleRun_serviceChain() {
	res, err := swbench.Run(swbench.Config{
		Switch:   "vale",
		Scenario: swbench.Loopback,
		Chain:    3,
		FrameLen: 1024,
		Duration: 4 * swbench.Millisecond,
		Warmup:   2 * swbench.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("VALE, 3-VNF chain, 1024B: %.1f Gbps\n", res.Gbps)
	// Output: VALE, 3-VNF chain, 1024B: 9.3 Gbps
}
